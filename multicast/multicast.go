// Package multicast is the public API of the library: genuine atomic
// multicast over arbitrary destination groups, driven by the failure
// detector μ = (∧ Σ_{g∩h}) ∧ (∧ Ω_g) ∧ γ of Sutra (PODC 2022), with the
// paper's variations available as options.
//
// A System is a deterministic virtual-time instance: declare a topology,
// optionally schedule crashes, issue multicasts, run, and inspect per-node
// delivery orders. Runs are reproducible from their seed, and every run can
// be validated against the full problem specification with Validate.
//
//	topo := multicast.NewTopology(5).
//		Group("g1", 0, 1).
//		Group("g2", 1, 2)
//	sys, err := multicast.New(topo, multicast.Config{Seed: 42})
//	...
//	sys.Multicast(0, "g1", []byte("hello"))
//	sys.Run()
//	order := sys.Delivered(1)
package multicast

import (
	"errors"
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

// Ordering selects the problem variation (Table 1 of the paper).
type Ordering int

const (
	// GlobalOrder is uniform global total order multicast from μ
	// (Algorithm 1). The default.
	GlobalOrder Ordering = iota
	// StrictOrder additionally respects real time using the indicator
	// detectors 1^{g∩h} (§6.1); use it under state-machine replication.
	StrictOrder
	// PairwiseOrder is the weaker §7 variation, for acyclic topologies.
	PairwiseOrder
	// StronglyGenuine hosts the intersection coordination inside g∩h with
	// Ω_{g∩h} ∧ Σ_{g∩h} so destination groups progress in isolation
	// (§6.2); meaningful when the topology has no cyclic family.
	StronglyGenuine
)

// Topology declares processes and named destination groups.
type Topology struct {
	n      int
	names  []string
	sets   []groups.ProcSet
	byName map[string]groups.GroupID
	err    error
}

// NewTopology starts a topology over n processes (numbered 0..n-1).
func NewTopology(n int) *Topology {
	return &Topology{n: n, byName: make(map[string]groups.GroupID)}
}

// Group declares a destination group. Declaration order defines group IDs.
func (t *Topology) Group(name string, members ...int) *Topology {
	if t.err != nil {
		return t
	}
	if _, dup := t.byName[name]; dup {
		t.err = fmt.Errorf("multicast: duplicate group %q", name)
		return t
	}
	var s groups.ProcSet
	for _, m := range members {
		if m < 0 || m >= t.n {
			t.err = fmt.Errorf("multicast: member %d of %q out of range", m, name)
			return t
		}
		s = s.Add(groups.Process(m))
	}
	t.byName[name] = groups.GroupID(len(t.names))
	t.names = append(t.names, name)
	t.sets = append(t.sets, s)
	return t
}

// Config tunes a System.
type Config struct {
	// Ordering selects the problem variation (default GlobalOrder).
	Ordering Ordering
	// Seed makes the schedule reproducible.
	Seed int64
	// DetectorDelay is the stabilisation lag of the failure detectors
	// (how long after a crash μ's components converge). Default 8 ticks.
	DetectorDelay int64
	// AccountCosts enables the §4.3 cost model: per-process step charges
	// and message counts for every shared-object operation.
	AccountCosts bool
	// Crashes schedules failures: process → virtual crash time.
	Crashes map[int]int64
}

// System is a runnable multicast instance.
type System struct {
	topo  *groups.Topology
	names []string
	sys   *core.System
}

// ErrUnknownGroup is returned for group names that were never declared.
var ErrUnknownGroup = errors.New("multicast: unknown group")

// New builds a system from a topology and a configuration.
func New(t *Topology, cfg Config) (*System, error) {
	if t.err != nil {
		return nil, t.err
	}
	if len(t.sets) == 0 {
		return nil, errors.New("multicast: no destination groups declared")
	}
	topo, err := groups.New(t.n, t.sets...)
	if err != nil {
		return nil, err
	}
	pat := failure.NewPattern(t.n)
	for p, at := range cfg.Crashes {
		if p < 0 || p >= t.n {
			return nil, fmt.Errorf("multicast: crash of out-of-range process %d", p)
		}
		pat = pat.WithCrash(groups.Process(p), failure.Time(at))
	}
	delay := cfg.DetectorDelay
	if delay == 0 {
		delay = 8
	}
	var variant core.Variant
	switch cfg.Ordering {
	case StrictOrder:
		variant = core.Strict
	case PairwiseOrder:
		variant = core.Pairwise
	case StronglyGenuine:
		variant = core.StronglyGenuine
	default:
		variant = core.Vanilla
	}
	if cfg.Ordering == PairwiseOrder && topo.HasCyclicFamilies() {
		return nil, errors.New("multicast: pairwise ordering requires an acyclic topology (F = ∅, §7)")
	}
	opt := core.Options{
		Variant:       variant,
		ChargeObjects: cfg.AccountCosts,
		FD:            fd.Options{Delay: failure.Time(delay), Seed: cfg.Seed},
	}
	sys := core.NewSystem(topo, pat, opt, cfg.Seed)
	names := append([]string(nil), t.names...)
	return &System{topo: topo, names: names, sys: sys}, nil
}

// groupID resolves a group name.
func (s *System) groupID(name string) (groups.GroupID, error) {
	for i, n := range s.names {
		if n == name {
			return groups.GroupID(i), nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownGroup, name)
}

// Message identifies an issued multicast.
type Message struct {
	ID      int64
	Src     int
	Group   string
	Payload []byte
}

// Multicast issues a multicast from process src to the named group. The
// sender must belong to the group (closed dissemination model).
func (s *System) Multicast(src int, group string, payload []byte) (Message, error) {
	g, err := s.groupID(group)
	if err != nil {
		return Message{}, err
	}
	if !s.topo.Group(g).Has(groups.Process(src)) {
		return Message{}, fmt.Errorf("multicast: sender %d not in group %q", src, group)
	}
	m := s.sys.Multicast(groups.Process(src), g, payload)
	return Message{ID: int64(m.ID), Src: src, Group: group, Payload: payload}, nil
}

// MulticastAt schedules a multicast at a virtual time (useful together with
// Crashes to build failure scenarios).
func (s *System) MulticastAt(at int64, src int, group string, payload []byte) error {
	g, err := s.groupID(group)
	if err != nil {
		return err
	}
	if !s.topo.Group(g).Has(groups.Process(src)) {
		return fmt.Errorf("multicast: sender %d not in group %q", src, group)
	}
	s.sys.MulticastAt(failure.Time(at), groups.Process(src), g, payload)
	return nil
}

// Run drives the system to quiescence; it returns an error when the step
// budget is exhausted first.
func (s *System) Run() error {
	if !s.sys.Run() {
		return errors.New("multicast: run did not quiesce within the step budget")
	}
	return nil
}

// Delivery is one delivered message at a process.
type Delivery struct {
	Message Message
	At      int64
}

// Delivered returns the delivery order at process p.
func (s *System) Delivered(p int) []Delivery {
	ids := s.sys.DeliveredAt(groups.Process(p))
	out := make([]Delivery, 0, len(ids))
	for _, id := range ids {
		m := s.sys.Sh.Reg.Get(id)
		at, _ := s.sys.Sh.FirstDeliveredAt(id)
		out = append(out, Delivery{
			Message: Message{
				ID:      int64(m.ID),
				Src:     int(m.Src),
				Group:   s.names[m.Dst],
				Payload: m.Payload,
			},
			At: int64(at),
		})
	}
	return out
}

// Validate checks the completed run against the specification (integrity,
// termination, ordering, genuineness — plus real-time order for
// StrictOrder systems) and returns the violations.
func (s *System) Validate() []error {
	var out []error
	for _, v := range s.sys.Check() {
		out = append(out, v)
	}
	return out
}

// Steps returns how many protocol actions process p executed — the
// footprint genuineness constrains.
func (s *System) Steps(p int) int64 {
	return s.sys.Eng.Steps(groups.Process(p)) + s.sys.Eng.Charges(groups.Process(p))
}

// MessagesSent returns the synthetic message count of the run (only
// populated with Config.AccountCosts).
func (s *System) MessagesSent() int64 { return s.sys.Eng.Messages() }

// Stats summarises a completed run.
type Stats struct {
	// Deliveries is the total number of delivery events.
	Deliveries int
	// Steps maps each process to its protocol-step count (actions plus
	// shared-object participation charges).
	Steps []int64
	// Messages is the synthetic protocol-message count (needs
	// Config.AccountCosts for the shared-object share).
	Messages int64
}

// Stats returns the run's summary.
func (s *System) Stats() Stats {
	st := Stats{
		Deliveries: len(s.sys.Sh.Deliveries()),
		Steps:      make([]int64, s.topo.NumProcesses()),
		Messages:   s.sys.Eng.Messages(),
	}
	for p := 0; p < s.topo.NumProcesses(); p++ {
		st.Steps[p] = s.Steps(p)
	}
	return st
}

// CyclicFamilies renders the cyclic families of the topology (the structure
// γ tracks), as lists of group names.
func (s *System) CyclicFamilies() [][]string {
	var out [][]string
	for _, f := range s.topo.Families() {
		var fam []string
		for _, g := range f.Groups.Members() {
			fam = append(fam, s.names[g])
		}
		out = append(out, fam)
	}
	return out
}

// internalTrace exposes the run trace to sibling tooling (cmd/, benches).
func (s *System) internalTrace() *check.Trace { return s.sys.Trace() }

// Core exposes the underlying core system for advanced uses (benchmarks,
// research tooling). The core API is not covered by compatibility
// guarantees.
func (s *System) Core() *core.System { return s.sys }
