// Package multicast is the public API of the library: genuine atomic
// multicast over arbitrary destination groups, driven by the failure
// detector μ = (∧ Σ_{g∩h}) ∧ (∧ Ω_g) ∧ γ of Sutra (PODC 2022), with the
// paper's variations available as options.
//
// A System is a deterministic virtual-time instance: declare a topology,
// optionally schedule crashes, issue multicasts, run, and inspect per-node
// delivery orders. Runs are reproducible from their seed, and every run can
// be validated against the full problem specification with Validate.
//
//	topo := multicast.NewTopology(5).
//		Group("g1", 0, 1).
//		Group("g2", 1, 2)
//	sys, err := multicast.New(topo, multicast.Config{Seed: 42})
//	...
//	sys.Multicast(0, "g1", []byte("hello"))
//	sys.Run()
//	order := sys.Delivered(1)
package multicast

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/live"
	"repro/internal/msg"
	"repro/internal/net"
	"repro/internal/obs"
)

// Ordering selects the problem variation (Table 1 of the paper).
type Ordering int

const (
	// GlobalOrder is uniform global total order multicast from μ
	// (Algorithm 1). The default.
	GlobalOrder Ordering = iota
	// StrictOrder additionally respects real time using the indicator
	// detectors 1^{g∩h} (§6.1); use it under state-machine replication.
	StrictOrder
	// PairwiseOrder is the weaker §7 variation, for acyclic topologies.
	PairwiseOrder
	// StronglyGenuine hosts the intersection coordination inside g∩h with
	// Ω_{g∩h} ∧ Σ_{g∩h} so destination groups progress in isolation
	// (§6.2); meaningful when the topology has no cyclic family.
	StronglyGenuine
	// GenericOrder is generic atomic multicast: total order is enforced only
	// within pairs the Config.Conflict relation says conflict, and a message
	// that commutes with everything is delivered without any cross-group
	// coordination. With a nil Conflict every pair conflicts and the
	// behaviour is exactly GlobalOrder.
	GenericOrder
)

// Backend selects the substrate the protocol runs over. The node logic is
// identical on both — see internal/core's Backend interfaces.
type Backend int

const (
	// Sim runs over ideal in-memory shared objects inside the
	// deterministic virtual-time engine: reproducible from the seed,
	// validated step accounting, crash scheduling in virtual time. The
	// default.
	Sim Backend = iota
	// Live runs over the real message-passing stack: every log a
	// replicated state machine (internal/replog, paxos per hosting group)
	// on an in-process transport, nodes stepped by goroutines, crashes
	// injected on the wire. Wall-clock, so not reproducible step-for-step;
	// validated by the same specification checkers.
	Live
)

// Topology declares processes and named destination groups.
type Topology struct {
	n      int
	names  []string
	sets   []groups.ProcSet
	byName map[string]groups.GroupID
	err    error
}

// NewTopology starts a topology over n processes (numbered 0..n-1).
func NewTopology(n int) *Topology {
	return &Topology{n: n, byName: make(map[string]groups.GroupID)}
}

// Group declares a destination group. Declaration order defines group IDs.
func (t *Topology) Group(name string, members ...int) *Topology {
	if t.err != nil {
		return t
	}
	if _, dup := t.byName[name]; dup {
		t.err = fmt.Errorf("multicast: duplicate group %q", name)
		return t
	}
	var s groups.ProcSet
	for _, m := range members {
		if m < 0 || m >= t.n {
			t.err = fmt.Errorf("multicast: member %d of %q out of range", m, name)
			return t
		}
		s = s.Add(groups.Process(m))
	}
	t.byName[name] = groups.GroupID(len(t.names))
	t.names = append(t.names, name)
	t.sets = append(t.sets, s)
	return t
}

// Config tunes a System.
type Config struct {
	// Backend selects the substrate (default Sim). With Live, the run is
	// wall-clock: Crashes times are ticks of roughly a millisecond,
	// AccountCosts is unavailable, and Run waits for delivery instead of
	// driving a scheduler.
	Backend Backend
	// Ordering selects the problem variation (default GlobalOrder).
	Ordering Ordering
	// Seed makes the schedule reproducible (Sim backend).
	Seed int64
	// DetectorDelay is the stabilisation lag of the failure detectors
	// (how long after a crash μ's components converge). Default 8 ticks.
	DetectorDelay int64
	// AccountCosts enables the §4.3 cost model: per-process step charges
	// and message counts for every shared-object operation. Sim only.
	AccountCosts bool
	// Crashes schedules failures: process → virtual crash time.
	Crashes map[int]int64
	// Observe selects the observability level of the run (default
	// obs.LevelAll: full event timeline, latency samples, coordination
	// counts). obs.LevelCounters drops the timeline; obs.LevelOff records
	// nothing, and Report then returns obs.ErrNotAccounted.
	Observe obs.Level
	// Conflict is the commutativity relation of GenericOrder: it reports
	// whether two messages conflict, i.e. must be delivered in the same
	// relative order at every common destination. It must be symmetric, and
	// a message that does not conflict with itself is treated as commuting
	// with every message (the fast-delivery path). Requires Ordering ==
	// GenericOrder; nil under GenericOrder means every pair conflicts.
	// KeyConflict builds the common key-equality relation for KV payloads.
	Conflict func(a, b Message) bool
}

// validate normalises the configuration and checks everything that does not
// need the built topology, returning the first problem found. n is the
// process count of the topology under construction.
func (cfg *Config) validate(n int) error {
	switch cfg.Backend {
	case Sim, Live:
	default:
		return fmt.Errorf("multicast: unknown backend %d", cfg.Backend)
	}
	switch cfg.Ordering {
	case GlobalOrder, StrictOrder, PairwiseOrder, StronglyGenuine, GenericOrder:
	default:
		return fmt.Errorf("multicast: unknown ordering %d", cfg.Ordering)
	}
	if cfg.Conflict != nil && cfg.Ordering != GenericOrder {
		return errors.New("multicast: Conflict requires Ordering == GenericOrder")
	}
	if cfg.Backend == Live && cfg.AccountCosts {
		return errors.New("multicast: AccountCosts requires the Sim backend")
	}
	for p, at := range cfg.Crashes {
		if p < 0 || p >= n {
			return fmt.Errorf("multicast: crash of out-of-range process %d", p)
		}
		if at < 0 {
			return fmt.Errorf("multicast: negative crash time %d for process %d", at, p)
		}
	}
	if cfg.DetectorDelay == 0 {
		cfg.DetectorDelay = 8
	}
	return nil
}

// System is a runnable multicast instance.
type System struct {
	topo   *groups.Topology
	names  []string
	byName map[string]groups.GroupID
	rec    *obs.Recorder
	sys    *core.System // Sim backend (nil under Live)
	lsys   *live.System // Live backend (nil under Sim)
}

// ErrUnknownGroup is returned for group names that were never declared.
var ErrUnknownGroup = errors.New("multicast: unknown group")

// ErrRunTimeout is wrapped by Run/RunContext when the run was cut short by
// a deadline or cancellation before reaching its goal.
var ErrRunTimeout = errors.New("multicast: run cancelled before completion")

// ErrStepBudget is wrapped by Run/RunContext when a Sim run exhausted its
// step budget without quiescing (a liveness failure in the scenario).
var ErrStepBudget = errors.New("multicast: run did not quiesce within the step budget")

// New builds a system from a topology and a configuration.
func New(t *Topology, cfg Config) (*System, error) {
	if t.err != nil {
		return nil, t.err
	}
	if len(t.sets) == 0 {
		return nil, errors.New("multicast: no destination groups declared")
	}
	if err := cfg.validate(t.n); err != nil {
		return nil, err
	}
	topo, err := groups.New(t.n, t.sets...)
	if err != nil {
		return nil, err
	}
	pat := failure.NewPattern(t.n)
	for p, at := range cfg.Crashes {
		pat = pat.WithCrash(groups.Process(p), failure.Time(at))
	}
	var variant core.Variant
	switch cfg.Ordering {
	case StrictOrder:
		variant = core.Strict
	case PairwiseOrder:
		variant = core.Pairwise
	case StronglyGenuine:
		variant = core.StronglyGenuine
	case GenericOrder:
		variant = core.Generic
	default:
		variant = core.Vanilla
	}
	if cfg.Ordering == PairwiseOrder && topo.HasCyclicFamilies() {
		return nil, errors.New("multicast: pairwise ordering requires an acyclic topology (F = ∅, §7)")
	}
	rec := obs.NewRecorder(obs.Options{
		Level:     cfg.Observe,
		WallClock: cfg.Backend == Live,
	})
	names := append([]string(nil), t.names...)
	byName := make(map[string]groups.GroupID, len(t.byName))
	for n, g := range t.byName {
		byName[n] = g
	}
	opt := core.Options{
		Variant:       variant,
		ChargeObjects: cfg.AccountCosts,
		FD:            fd.Options{Delay: failure.Time(cfg.DetectorDelay), Seed: cfg.Seed},
		Rec:           rec,
	}
	if cfg.Conflict != nil {
		rel := cfg.Conflict
		lift := func(m *msg.Message) Message {
			return Message{ID: int64(m.ID), Src: int(m.Src), Group: names[m.Dst], Payload: m.Payload}
		}
		opt.Conflict = func(a, b *msg.Message) bool { return rel(lift(a), lift(b)) }
	}
	s := &System{topo: topo, names: names, byName: byName, rec: rec}
	if cfg.Backend == Live {
		s.lsys = live.NewSystem(topo, pat, net.New(t.n), live.Config{Opt: opt})
		s.lsys.Start()
		return s, nil
	}
	s.sys = core.NewSystem(topo, pat, opt, cfg.Seed)
	return s, nil
}

// groupID resolves a group name via the map the Topology built (O(1)).
func (s *System) groupID(name string) (groups.GroupID, error) {
	if g, ok := s.byName[name]; ok {
		return g, nil
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownGroup, name)
}

// Message identifies an issued multicast.
type Message struct {
	ID      int64
	Src     int
	Group   string
	Payload []byte
}

// KeyConflict builds a Conflict relation for key-addressed (KV) payloads:
// extract returns the key a payload operates on, with ok == false for
// payloads that touch no key at all. Two keyed messages conflict iff their
// keys are equal; a keyless message commutes with everything — including
// itself — which is exactly what routes it onto the coordination-free fast
// delivery path under GenericOrder.
func KeyConflict(extract func(payload []byte) (key string, ok bool)) func(a, b Message) bool {
	return func(a, b Message) bool {
		ka, oka := extract(a.Payload)
		kb, okb := extract(b.Payload)
		if !oka || !okb {
			return false
		}
		return ka == kb
	}
}

// Multicast issues a multicast from process src to the named group. The
// sender must belong to the group (closed dissemination model).
func (s *System) Multicast(src int, group string, payload []byte) (Message, error) {
	g, err := s.groupID(group)
	if err != nil {
		return Message{}, err
	}
	if !s.topo.Group(g).Has(groups.Process(src)) {
		return Message{}, fmt.Errorf("multicast: sender %d not in group %q", src, group)
	}
	if s.lsys != nil {
		m := s.lsys.Multicast(groups.Process(src), g, payload)
		return Message{ID: int64(m.ID), Src: src, Group: group, Payload: payload}, nil
	}
	m := s.sys.Multicast(groups.Process(src), g, payload)
	return Message{ID: int64(m.ID), Src: src, Group: group, Payload: payload}, nil
}

// MulticastAt schedules a multicast at a virtual time (useful together with
// Crashes to build failure scenarios).
func (s *System) MulticastAt(at int64, src int, group string, payload []byte) error {
	g, err := s.groupID(group)
	if err != nil {
		return err
	}
	if !s.topo.Group(g).Has(groups.Process(src)) {
		return fmt.Errorf("multicast: sender %d not in group %q", src, group)
	}
	if s.lsys != nil {
		return errors.New("multicast: MulticastAt requires the Sim backend (live runs are wall-clock)")
	}
	s.sys.MulticastAt(failure.Time(at), groups.Process(src), g, payload)
	return nil
}

// Run drives the system to quiescence. It delegates to RunContext: on the
// Sim backend under a background context; on the Live backend under a fixed
// 60s safety bound — pass a deadline via RunContext to control it.
func (s *System) Run() error {
	ctx := context.Background()
	if s.lsys != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 60*time.Second)
		defer cancel()
	}
	return s.RunContext(ctx)
}

// RunContext drives the system to quiescence under a context. On the Sim
// backend it steps the deterministic engine, polling the context between
// scheduling batches; on the Live backend it waits until every issued
// multicast is delivered at every correct destination member and then stops
// the substrate — cancellation mid-run stops the substrate cleanly (trace
// frozen first, then transport closed, then goroutines joined).
//
// The error wraps typed sentinels callers can branch on with errors.Is:
// ErrRunTimeout (with the context's own error) when the context ended the
// run, ErrStepBudget when a Sim run exhausted its step budget.
func (s *System) RunContext(ctx context.Context) error {
	if s.lsys != nil {
		ok := s.lsys.AwaitDeliveryCtx(ctx)
		s.lsys.Stop()
		if !ok {
			return fmt.Errorf("multicast: live run did not reach full delivery: %w (%w)", ErrRunTimeout, context.Cause(ctx))
		}
		return nil
	}
	outcome := s.sys.RunInterruptible(func() bool { return ctx.Err() != nil })
	switch outcome {
	case engine.Quiesced:
		return nil
	case engine.Stopped:
		return fmt.Errorf("multicast: sim run interrupted: %w (%w)", ErrRunTimeout, context.Cause(ctx))
	default:
		return ErrStepBudget
	}
}

// Delivery is one delivered message at a process.
type Delivery struct {
	Message Message
	At      int64
}

// shared returns the run's shared state, whichever backend holds it.
func (s *System) shared() *core.Shared {
	if s.lsys != nil {
		return s.lsys.Sh
	}
	return s.sys.Sh
}

// Delivered returns the delivery order at process p.
func (s *System) Delivered(p int) []Delivery {
	sh := s.shared()
	var ids []int64
	if s.lsys != nil {
		for _, d := range sh.Deliveries() {
			if d.P == groups.Process(p) {
				ids = append(ids, int64(d.M))
			}
		}
	} else {
		for _, id := range s.sys.DeliveredAt(groups.Process(p)) {
			ids = append(ids, int64(id))
		}
	}
	out := make([]Delivery, 0, len(ids))
	for _, id64 := range ids {
		id := msg.ID(id64)
		m := sh.Reg.Get(id)
		at, _ := sh.FirstDeliveredAt(id)
		out = append(out, Delivery{
			Message: Message{
				ID:      int64(m.ID),
				Src:     int(m.Src),
				Group:   s.names[m.Dst],
				Payload: m.Payload,
			},
			At: int64(at),
		})
	}
	return out
}

// Validate checks the completed run against the specification (integrity,
// termination, ordering, genuineness — plus real-time order for
// StrictOrder systems) and returns the violations.
func (s *System) Validate() []error {
	var out []error
	var vs []*check.Violation
	if s.lsys != nil {
		vs = s.lsys.Check()
	} else {
		vs = s.sys.Check()
	}
	for _, v := range vs {
		out = append(out, v)
	}
	return out
}

// Report returns the run's observability: delivery-latency summaries,
// per-process footprints, per-pair g∩h coordination counts, the event
// timeline, and — on the Live backend — the substrate counters (transport
// packets/bytes per link, paxos rounds, replog applies, chaos injections).
//
// Quantities the run did not measure surface as obs.ErrNotAccounted — from
// this method when observability was disabled (Config.Observe ==
// obs.LevelOff), and from the report's own accessors (RunReport.StepsOf,
// RunReport.SentMessages) for backend-specific ledgers — never as
// fabricated zeros.
func (s *System) Report() (obs.RunReport, error) {
	if s.rec == nil {
		return obs.RunReport{}, fmt.Errorf("%w: observability disabled (Config.Observe = LevelOff)", obs.ErrNotAccounted)
	}
	if s.lsys != nil {
		return s.lsys.Report(), nil
	}
	return s.sys.Report(), nil
}

// CyclicFamilies renders the cyclic families of the topology (the structure
// γ tracks), as lists of group names.
func (s *System) CyclicFamilies() [][]string {
	var out [][]string
	for _, f := range s.topo.Families() {
		var fam []string
		for _, g := range f.Groups.Members() {
			fam = append(fam, s.names[g])
		}
		out = append(out, fam)
	}
	return out
}

// internalTrace exposes the run trace to sibling tooling (cmd/, benches).
func (s *System) internalTrace() *check.Trace {
	if s.lsys != nil {
		return s.lsys.Trace()
	}
	return s.sys.Trace()
}

// Core exposes the underlying core system for advanced uses (benchmarks,
// research tooling); nil on the Live backend. The core API is not covered
// by compatibility guarantees.
func (s *System) Core() *core.System { return s.sys }
