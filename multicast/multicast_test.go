package multicast

import (
	"bytes"
	"errors"
	"testing"
)

func figure1() *Topology {
	return NewTopology(5).
		Group("g1", 0, 1).
		Group("g2", 1, 2).
		Group("g3", 0, 2, 3).
		Group("g4", 0, 3, 4)
}

func TestQuickstartFlow(t *testing.T) {
	sys, err := New(figure1(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(0, "g1", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(2, "g3", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatalf("violations: %v", errs)
	}
	got := sys.Delivered(0) // p0 ∈ g1, g3, g4
	if len(got) != 2 {
		t.Fatalf("p0 delivered %d, want 2", len(got))
	}
	if got[0].Message.Group != "g1" && got[0].Message.Group != "g3" {
		t.Fatalf("unexpected group %q", got[0].Message.Group)
	}
	if !bytes.Equal(sys.Delivered(1)[0].Message.Payload, []byte("a")) {
		t.Fatalf("payload lost")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := New(NewTopology(3), Config{}); err == nil {
		t.Fatalf("no groups: want error")
	}
	bad := NewTopology(2).Group("g", 5)
	if _, err := New(bad, Config{}); err == nil {
		t.Fatalf("out-of-range member: want error")
	}
	dup := NewTopology(2).Group("g", 0).Group("g", 1)
	if _, err := New(dup, Config{}); err == nil {
		t.Fatalf("duplicate group: want error")
	}
}

func TestSenderMustBeMember(t *testing.T) {
	sys, err := New(figure1(), Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(4, "g1", nil); err == nil {
		t.Fatalf("closed model: sender outside group must be rejected")
	}
	if _, err := sys.Multicast(0, "nope", nil); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("unknown group error missing: %v", err)
	}
}

func TestCrashScenario(t *testing.T) {
	sys, err := New(figure1(), Config{
		Seed:    3,
		Crashes: map[int]int64{1: 40}, // p1 = g1∩g2
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Multicast(0, "g1", nil)
	sys.Multicast(2, "g2", nil)
	if err := sys.MulticastAt(100, 0, "g3", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatalf("violations: %v", errs)
	}
}

func TestPairwiseRejectsCyclicTopology(t *testing.T) {
	cyc := NewTopology(3).
		Group("a", 0, 1).
		Group("b", 1, 2).
		Group("c", 2, 0)
	if _, err := New(cyc, Config{Ordering: PairwiseOrder}); err == nil {
		t.Fatalf("pairwise ordering on a cyclic topology must be rejected")
	}
}

func TestStrictOrderingRuns(t *testing.T) {
	sys, err := New(figure1(), Config{Ordering: StrictOrder, Seed: 4, Crashes: map[int]int64{1: 30}})
	if err != nil {
		t.Fatal(err)
	}
	sys.Multicast(0, "g1", nil)
	sys.Multicast(2, "g3", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatalf("violations: %v", errs)
	}
}

func TestGenuinenessFootprint(t *testing.T) {
	sys, err := New(figure1(), Config{Seed: 5, AccountCosts: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Multicast(0, "g1", nil) // g1 = {0,1}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Report()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 4} {
		if steps, err := rep.StepsOf(p); err != nil || steps != 0 {
			t.Fatalf("p%d took %d steps though untouched (err %v)", p, steps, err)
		}
	}
	if sent, err := rep.SentMessages(); err != nil || sent == 0 {
		t.Fatalf("cost accounting produced no messages (sent %d, err %v)", sent, err)
	}
}

func TestReportSummarise(t *testing.T) {
	sys, err := New(figure1(), Config{Seed: 11, AccountCosts: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Multicast(0, "g1", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deliveries != 2 { // g1 = {0,1}
		t.Fatalf("deliveries = %d, want 2", rep.Deliveries)
	}
	s0, err0 := rep.StepsOf(0)
	s4, err4 := rep.StepsOf(4)
	if err0 != nil || err4 != nil || s0 == 0 || s4 != 0 {
		t.Fatalf("steps wrong: %v (%v), %v (%v)", s0, err0, s4, err4)
	}
	if sent, err := rep.SentMessages(); err != nil || sent == 0 {
		t.Fatalf("messages not accounted (sent %d, err %v)", sent, err)
	}
}

func TestCyclicFamiliesSurface(t *testing.T) {
	sys, err := New(figure1(), Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	fams := sys.CyclicFamilies()
	if len(fams) != 3 {
		t.Fatalf("families = %v, want 3", fams)
	}
}

func TestStronglyGenuineOption(t *testing.T) {
	topo := NewTopology(5).
		Group("left", 0, 1, 2).
		Group("right", 2, 3, 4) // acyclic: F = ∅
	sys, err := New(topo, Config{Ordering: StronglyGenuine, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sys.Multicast(0, "left", nil)
	sys.Multicast(3, "right", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatalf("violations: %v", errs)
	}
	if fams := sys.CyclicFamilies(); len(fams) != 0 {
		t.Fatalf("acyclic topology reported families %v", fams)
	}
}

func TestMulticastAtRejectsBadSender(t *testing.T) {
	sys, err := New(figure1(), Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.MulticastAt(10, 4, "g1", nil); err == nil {
		t.Fatalf("scheduled multicast from non-member must be rejected")
	}
	if err := sys.MulticastAt(10, 0, "nope", nil); err == nil {
		t.Fatalf("scheduled multicast to unknown group must be rejected")
	}
}

func TestCoreEscapeHatch(t *testing.T) {
	sys, err := New(figure1(), Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Core() == nil {
		t.Fatalf("core accessor missing")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []Delivery {
		sys, err := New(figure1(), Config{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		sys.Multicast(0, "g1", nil)
		sys.Multicast(2, "g2", nil)
		sys.Multicast(3, "g4", nil)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.Delivered(0)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("diverged")
	}
	for i := range a {
		if a[i].Message.ID != b[i].Message.ID || a[i].At != b[i].At {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
