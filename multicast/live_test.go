package multicast

import "testing"

// TestLiveBackendFacade runs a small overlapping-group scenario end-to-end
// over the Live backend through the public API: the same protocol code as
// the Sim runs, but every log is a paxos-replicated state machine on an
// in-process transport.
func TestLiveBackendFacade(t *testing.T) {
	topo := NewTopology(3).
		Group("ab", 0, 1).
		Group("bc", 1, 2)
	sys, err := New(topo, Config{Backend: Live})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(0, "ab", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(1, "bc", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(2, "bc", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := sys.MulticastAt(10, 0, "ab", nil); err == nil {
		t.Fatal("MulticastAt should be rejected on the Live backend")
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for _, v := range sys.Validate() {
		t.Errorf("specification violation: %v", v)
	}
	if got := len(sys.Delivered(1)); got != 3 {
		t.Fatalf("p1 is in both groups and should deliver 3 messages, got %d: %v",
			got, sys.Delivered(1))
	}
}

// TestLiveBackendRejectsAccountCosts: the cost model is an engine-run
// construct.
func TestLiveBackendRejectsAccountCosts(t *testing.T) {
	topo := NewTopology(2).Group("g", 0, 1)
	if _, err := New(topo, Config{Backend: Live, AccountCosts: true}); err == nil {
		t.Fatal("AccountCosts with Live backend should be rejected")
	}
}
