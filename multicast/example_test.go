package multicast_test

import (
	"fmt"

	"repro/multicast"
)

// Example runs two overlapping groups and shows the shared member's
// delivery order. Runs are deterministic per seed, so the output is stable.
func Example() {
	topo := multicast.NewTopology(3).
		Group("left", 0, 1).
		Group("right", 1, 2)
	sys, err := multicast.New(topo, multicast.Config{Seed: 1})
	if err != nil {
		panic(err)
	}
	sys.Multicast(0, "left", []byte("L"))
	sys.Multicast(2, "right", []byte("R"))
	if err := sys.Run(); err != nil {
		panic(err)
	}
	if errs := sys.Validate(); len(errs) != 0 {
		panic(fmt.Sprint(errs))
	}
	for _, d := range sys.Delivered(1) { // p1 is in both groups
		fmt.Printf("%s:%s\n", d.Message.Group, d.Message.Payload)
	}
	// Output:
	// left:L
	// right:R
}

// ExampleSystem_Validate shows the built-in specification check.
func ExampleSystem_Validate() {
	topo := multicast.NewTopology(2).Group("g", 0, 1)
	sys, _ := multicast.New(topo, multicast.Config{Seed: 2})
	sys.Multicast(0, "g", nil)
	sys.Run()
	fmt.Println(len(sys.Validate()))
	// Output:
	// 0
}
