package multicast

import (
	"strings"
	"testing"
)

// kvConflict: "SET <key> ..." conflicts per key, anything else commutes.
func kvConflict() func(a, b Message) bool {
	return KeyConflict(func(p []byte) (string, bool) {
		f := strings.Fields(string(p))
		if len(f) < 2 || f[0] != "SET" {
			return "", false
		}
		return f[1], true
	})
}

// TestGenericOrderKeyConflict runs the README's key-based conflict example
// end to end on the sim backend: same-key writes order, cross-key writes
// commute, and the conflict-aware validation passes.
func TestGenericOrderKeyConflict(t *testing.T) {
	sys, err := New(figure1(), Config{
		Seed:     11,
		Ordering: GenericOrder,
		Conflict: kvConflict(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []struct {
		src     int
		g       string
		payload string
	}{
		{0, "g1", "SET x 1"},
		{1, "g2", "SET x 2"},
		{2, "g3", "SET y 3"},
		{0, "g4", "GET x"}, // keyless per the extractor: commutes
	} {
		if _, err := sys.Multicast(m.src, m.g, []byte(m.payload)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatalf("violations: %v", errs)
	}
	if got := len(sys.Delivered(0)); got == 0 {
		t.Fatal("p0 delivered nothing")
	}
}

// TestGenericOrderNilConflict: GenericOrder with no relation is legal and
// behaves as all-conflict.
func TestGenericOrderNilConflict(t *testing.T) {
	sys, err := New(figure1(), Config{Seed: 12, Ordering: GenericOrder})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(0, "g1", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Multicast(1, "g2", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatalf("violations: %v", errs)
	}
}

// TestConflictRequiresGenericOrder: supplying a relation under any other
// ordering is a configuration error.
func TestConflictRequiresGenericOrder(t *testing.T) {
	_, err := New(figure1(), Config{Conflict: kvConflict()})
	if err == nil {
		t.Fatal("Conflict without GenericOrder accepted")
	}
}
