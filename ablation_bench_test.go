package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

// Ablation benches: the cost of each design choice DESIGN.md calls out.

// figure1Workload drives one message per group on Figure 1.
func figure1Workload(s *core.System) {
	s.Multicast(0, 0, nil)
	s.Multicast(1, 1, nil)
	s.Multicast(2, 2, nil)
	s.Multicast(3, 3, nil)
}

// BenchmarkAblation_ChargeModel: the §4.3 cost accounting is bookkeeping
// only — this measures its wall-clock overhead.
func BenchmarkAblation_ChargeModel(b *testing.B) {
	topo := groups.Figure1()
	for _, charged := range []bool{false, true} {
		b.Run(fmt.Sprintf("charged=%v", charged), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.NewSystem(topo, failure.NewPattern(5),
					core.Options{ChargeObjects: charged}, int64(i))
				figure1Workload(s)
				if !s.Run() {
					b.Fatal("no quiescence")
				}
			}
		})
	}
}

// BenchmarkAblation_QuorumGate: the quorum-responsiveness gate queries Σ on
// every action attempt; full-participation behaviour is unchanged.
func BenchmarkAblation_QuorumGate(b *testing.B) {
	topo := groups.Figure1()
	for _, gated := range []bool{false, true} {
		b.Run(fmt.Sprintf("gated=%v", gated), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.NewSystem(topo, failure.NewPattern(5),
					core.Options{QuorumGate: gated}, int64(i))
				figure1Workload(s)
				if !s.Run() {
					b.Fatal("no quiescence")
				}
			}
		})
	}
}

// BenchmarkAblation_DetectorDelay: delivery latency after a crash grows
// with the detectors' stabilisation delay — the synchrony knob μ's
// components expose. Reports the completion time (virtual ticks) of a
// message blocked behind a faulty cyclic family.
func BenchmarkAblation_DetectorDelay(b *testing.B) {
	topo := groups.Figure1()
	for _, delay := range []failure.Time{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("delay=%d", delay), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				pat := failure.NewPattern(5).WithCrash(1, 10) // g1∩g2 dies
				s := core.NewSystem(topo, pat, core.Options{FD: fd.Options{Delay: delay}}, int64(i))
				m := s.Multicast(0, 0, nil) // g1's message waits on γ
				if !s.Run() {
					b.Fatal("no quiescence")
				}
				at, ok := s.Sh.FirstDeliveredAt(m.ID)
				if !ok {
					b.Fatal("message lost")
				}
				total += int64(at)
			}
			b.ReportMetric(float64(total)/float64(b.N), "ticks-to-deliver")
		})
	}
}

// BenchmarkAblation_Variants: the four problem flavours on one acyclic
// topology — what each guarantee costs.
func BenchmarkAblation_Variants(b *testing.B) {
	topo := groups.MustNew(5,
		groups.NewProcSet(0, 1, 2),
		groups.NewProcSet(2, 3, 4),
	)
	for _, v := range []core.Variant{core.Vanilla, core.Strict, core.Pairwise, core.StronglyGenuine} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.NewSystem(topo, failure.NewPattern(5),
					core.Options{Variant: v}, int64(i))
				s.Multicast(0, 0, nil)
				s.Multicast(3, 1, nil)
				s.Multicast(2, 0, nil)
				if !s.Run() {
					b.Fatal("no quiescence")
				}
			}
		})
	}
}
