// Package repro is a from-scratch Go reproduction of "The Weakest Failure
// Detector for Genuine Atomic Multicast" (Pierre Sutra, PODC 2022, extended
// version).
//
// The public API lives in repro/multicast; the paper's systems live under
// internal/ (see DESIGN.md for the inventory) and the benchmark harness that
// regenerates each of the paper's tables and figures is bench_test.go plus
// cmd/figures and cmd/benchtab.
package repro
