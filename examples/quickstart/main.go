// Command quickstart is the smallest end-to-end use of the library: the
// paper's Figure 1 topology, a few multicasts, per-process delivery orders,
// and a specification check of the run.
package main

import (
	"fmt"
	"log"

	"repro/multicast"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Figure 1 of the paper: five processes, four overlapping groups.
	topo := multicast.NewTopology(5).
		Group("g1", 0, 1).
		Group("g2", 1, 2).
		Group("g3", 0, 2, 3).
		Group("g4", 0, 3, 4)

	sys, err := multicast.New(topo, multicast.Config{Seed: 42})
	if err != nil {
		return err
	}

	fmt.Println("cyclic families (what γ tracks):")
	for _, fam := range sys.CyclicFamilies() {
		fmt.Printf("  %v\n", fam)
	}

	// One message per group.
	for _, m := range []struct {
		src   int
		group string
		text  string
	}{
		{0, "g1", "hello g1"},
		{1, "g2", "hello g2"},
		{2, "g3", "hello g3"},
		{4, "g4", "hello g4"},
	} {
		if _, err := sys.Multicast(m.src, m.group, []byte(m.text)); err != nil {
			return err
		}
	}

	if err := sys.Run(); err != nil {
		return err
	}
	if errs := sys.Validate(); len(errs) != 0 {
		return fmt.Errorf("specification violated: %v", errs)
	}

	fmt.Println("\ndelivery orders:")
	for p := 0; p < 5; p++ {
		fmt.Printf("  p%d:", p)
		for _, d := range sys.Delivered(p) {
			fmt.Printf(" [%s %q]", d.Message.Group, d.Message.Payload)
		}
		fmt.Println()
	}
	fmt.Println("\nrun satisfied integrity, termination, ordering and minimality ✓")
	return nil
}
