// Command shardedkv builds the application the paper's introduction
// motivates: a partially replicated (sharded) key-value store where
// single-shard operations stay inside their shard and cross-shard
// transactions are ordered by genuine atomic multicast — only the shards a
// transaction touches take steps, yet all replicas of those shards apply
// conflicting transactions in the same order.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/multicast"
)

// txn is a deterministic transaction over the store.
type txn struct {
	group string   // destination group: the shards it touches
	src   int      // submitting replica
	ops   []string // "set k v" / "incr k" commands
}

// store is one replica's deterministic state machine.
type store map[string]int

func (s store) apply(ops []string) {
	for _, op := range ops {
		f := strings.Fields(op)
		switch f[0] {
		case "set":
			var v int
			fmt.Sscanf(f[2], "%d", &v)
			s[f[1]] = v
		case "incr":
			s[f[1]]++
		}
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Six replicas, two shards of three replicas each, plus the cross-shard
	// group AB spanning both (the destination of cross-shard transactions).
	// Shard A = {0,1,2}, shard B = {3,4,5}.
	topo := multicast.NewTopology(6).
		Group("A", 0, 1, 2).
		Group("B", 3, 4, 5).
		Group("AB", 0, 1, 2, 3, 4, 5)

	sys, err := multicast.New(topo, multicast.Config{
		Seed:    7,
		Crashes: map[int]int64{2: 60}, // one replica of shard A fails mid-run
	})
	if err != nil {
		return err
	}

	workload := []txn{
		{group: "A", src: 0, ops: []string{"set x 1"}},
		{group: "B", src: 3, ops: []string{"set y 10"}},
		{group: "AB", src: 1, ops: []string{"incr x", "incr y"}}, // cross-shard
		{group: "A", src: 1, ops: []string{"incr x"}},
		{group: "B", src: 4, ops: []string{"incr y"}},
		{group: "AB", src: 5, ops: []string{"set z 99"}},
	}
	for i, t := range workload {
		payload := []byte(strings.Join(t.ops, ";"))
		if err := sys.MulticastAt(int64(5+10*i), t.src, t.group, payload); err != nil {
			return err
		}
	}

	if err := sys.Run(); err != nil {
		return err
	}
	if errs := sys.Validate(); len(errs) != 0 {
		return fmt.Errorf("specification violated: %v", errs)
	}

	// Replay each replica's delivery order through its state machine.
	replicas := make([]store, 6)
	for p := range replicas {
		replicas[p] = store{}
		for _, d := range sys.Delivered(p) {
			replicas[p].apply(strings.Split(string(d.Message.Payload), ";"))
		}
	}

	fmt.Println("replica states after replay:")
	for p, st := range replicas {
		fmt.Printf("  replica %d: x=%d y=%d z=%d (%d txns)\n",
			p, st["x"], st["y"], st["z"], len(sys.Delivered(p)))
	}

	// Convergence check: all surviving replicas of a shard agree.
	for _, shard := range [][]int{{0, 1}, {3, 4, 5}} { // replica 2 crashed
		for _, k := range []string{"x", "y", "z"} {
			ref := replicas[shard[0]][k]
			for _, p := range shard[1:] {
				if replicas[p][k] != ref {
					return fmt.Errorf("replicas %d and %d diverge on %s", shard[0], p, k)
				}
			}
		}
	}
	fmt.Println("\nsurviving replicas of each shard converged ✓")
	fmt.Println("cross-shard transactions ordered consistently across shards ✓")
	return nil
}
