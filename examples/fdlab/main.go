// Command fdlab is a failure-detector playground: it replays the §3
// narrative of the paper on the Figure 1 topology — the outputs of Σ, Ω and
// the new cyclicity detector γ before and after the crash of p2 — and then
// shows the necessity side: γ and 1^{g∩h} re-emulated out of black-box runs
// of the multicast algorithm (Algorithms 3 and 4).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/failure"
	"repro/internal/fd"
	"repro/internal/groups"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topo := groups.Figure1()
	fmt.Println("topology:", topo)
	fmt.Println("\ncyclic families F:")
	for _, f := range topo.Families() {
		fmt.Printf("  %v with %d closed paths\n", f.Groups, len(f.CPaths))
	}

	// The §3 scenario: Correct = {p1, p4, p5}; p2 and p3 crash.
	pat := failure.NewPattern(5).WithCrash(1, 20).WithCrash(2, 30)
	mu := fd.NewMu(topo, pat, fd.Options{Delay: 5, Seed: 1})

	fmt.Println("\nideal detector histories (pattern:", pat, "):")
	for _, t := range []failure.Time{0, 25, 100} {
		fams := mu.Gamma().Families(0, t)
		var names []groups.GroupSet
		for _, f := range fams {
			names = append(names, f.Groups)
		}
		sig, _ := mu.SigmaFor(0, 0) // Σ_{g1}
		q, _ := sig.Quorum(0, t)
		l, _ := mu.OmegaFor(0).Leader(0, t)
		fmt.Printf("  t=%3d  γ(p1)=%v  Σ_g1(p1)=%v  Ω_g1(p1)=p%d\n", t, names, q, l)
	}
	gg := mu.GammaGroupsAt(0, 0, 100)
	fmt.Printf("  stabilised γ(g1) = %v (the paper's {g3,g4})\n", gg)

	// Necessity: emulate γ from runs of the algorithm itself (Algorithm 3).
	fmt.Println("\nAlgorithm 3: γ emulated from black-box runs of Algorithm 1")
	em := extract.NewGammaEmulation(topo, pat, core.Options{FD: fd.Options{Delay: 5}}, 2, nil)
	for _, f := range em.Families(0, em.Horizon()+10) {
		fmt.Printf("  still output at p1: %v\n", f.Groups)
	}

	// And 1^{g∩h} from a strict solution (Algorithm 4), for g1∩g2 = {p2}.
	fmt.Println("\nAlgorithm 4: 1^{g1∩g2} emulated from a strict solution")
	ind := extract.NewIndicatorEmulation(topo, pat, core.Options{FD: fd.Options{Delay: 5}}, 3, 0, 1)
	fmt.Printf("  1^{g1∩g2} at p1 after stabilisation: %v (p2 crashed)\n",
		ind.Faulty(0, ind.Horizon()+50))

	// Algorithm 5: extract Ω_{g∩h} from a strongly genuine solution on a
	// two-group instance.
	fmt.Println("\nAlgorithm 5: Ω_{g∩h} extracted via the simulation forest")
	topo2 := groups.MustNew(4, groups.NewProcSet(0, 1, 2), groups.NewProcSet(1, 2, 3))
	pat2 := failure.NewPattern(4).WithCrash(2, 0)
	ex := extract.NewOmegaExtraction(topo2, pat2, 0, 1, fd.Options{}, 28)
	idx, univalent, conn, found := ex.CriticalIndex()
	fmt.Printf("  critical index: %d (univalent=%v, connecting=p%d, found=%v)\n",
		idx, univalent, conn, found)
	leader, _ := ex.Extract(1)
	fmt.Printf("  extracted eventual leader of g∩h: p%d\n", leader)
	return nil
}
