// Command smr demonstrates the strict variation (§6.1): state-machine
// replication needs real-time order — if a command is submitted after
// another was delivered, no replica may apply them in the opposite order —
// which plain atomic multicast does not guarantee. The example runs a small
// replicated bank on StrictOrder multicast and checks linearizability of
// the observed history.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/multicast"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two account shards sharing an auditor process p2 — the intersection
	// whose failure the indicator 1^{g∩h} tracks.
	topo := multicast.NewTopology(5).
		Group("acctA", 0, 1, 2).
		Group("acctB", 2, 3, 4)

	sys, err := multicast.New(topo, multicast.Config{
		Ordering: multicast.StrictOrder,
		Seed:     11,
		Crashes:  map[int]int64{2: 120}, // the auditor fails mid-run
	})
	if err != nil {
		return err
	}

	// Commands arrive over real time; later submissions must never be
	// applied before earlier deliveries (strict ordering).
	cmds := []struct {
		at    int64
		src   int
		group string
		cmd   string
	}{
		{5, 0, "acctA", "deposit A 100"},
		{10, 3, "acctB", "deposit B 50"},
		{60, 1, "acctA", "withdraw A 30"},
		{140, 4, "acctB", "deposit B 25"}, // after the auditor crashed
		{160, 0, "acctA", "deposit A 5"},
	}
	for _, c := range cmds {
		if err := sys.MulticastAt(c.at, c.src, c.group, []byte(c.cmd)); err != nil {
			return err
		}
	}

	if err := sys.Run(); err != nil {
		return err
	}
	if errs := sys.Validate(); len(errs) != 0 {
		return fmt.Errorf("specification violated (incl. real-time order): %v", errs)
	}

	// Replay the ledgers.
	balances := make([]map[string]int, 5)
	for p := range balances {
		balances[p] = map[string]int{}
		for _, d := range sys.Delivered(p) {
			f := strings.Fields(string(d.Message.Payload))
			amt := 0
			fmt.Sscanf(f[2], "%d", &amt)
			if f[0] == "withdraw" {
				amt = -amt
			}
			balances[p][f[1]] += amt
		}
	}

	fmt.Println("ledger replicas:")
	for p, b := range balances {
		fmt.Printf("  p%d: A=%d B=%d (%d commands)\n", p, b["A"], b["B"], len(sys.Delivered(p)))
	}

	// Surviving replicas of each shard agree on the final balances.
	if balances[0]["A"] != balances[1]["A"] {
		return fmt.Errorf("acctA replicas diverge")
	}
	if balances[3]["B"] != balances[4]["B"] {
		return fmt.Errorf("acctB replicas diverge")
	}
	if balances[0]["A"] != 75 {
		return fmt.Errorf("acctA = %d, want 75", balances[0]["A"])
	}
	if balances[3]["B"] != 75 {
		return fmt.Errorf("acctB = %d, want 75", balances[3]["B"])
	}
	fmt.Println("\nstrict (real-time) order held across the auditor's failure ✓")
	return nil
}
