// Command convoy demonstrates the §6.2 convoy effect interactively: a ring
// of overlapping groups, a probe message to one group, and the probe's
// completion latency with the ring idle vs. busy. The growing gap is the
// delay chain "spanning outside the destination group" that motivates the
// strongly genuine variation.
package main

import (
	"fmt"
	"log"

	"repro/multicast"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// ringTopology builds k groups g_i = {p_i, p_{i+1 mod k}}.
func ringTopology(k int) *multicast.Topology {
	t := multicast.NewTopology(k)
	for i := 0; i < k; i++ {
		t.Group(fmt.Sprintf("g%d", i), i, (i+1)%k)
	}
	return t
}

func probeLatency(k int, busy bool) (int64, error) {
	sys, err := multicast.New(ringTopology(k), multicast.Config{Seed: 9})
	if err != nil {
		return 0, err
	}
	if busy {
		for g := k - 1; g >= 1; g-- {
			if err := sys.MulticastAt(2, g, fmt.Sprintf("g%d", g), nil); err != nil {
				return 0, err
			}
		}
	}
	const probeAt = 4
	if err := sys.MulticastAt(probeAt, 0, "g0", []byte("probe")); err != nil {
		return 0, err
	}
	if err := sys.Run(); err != nil {
		return 0, err
	}
	if errs := sys.Validate(); len(errs) != 0 {
		return 0, fmt.Errorf("violations: %v", errs)
	}
	// Completion: the latest delivery of the probe across g0's members.
	var done int64 = -1
	for _, p := range []int{0, 1 % k} {
		for _, d := range sys.Delivered(p) {
			if string(d.Message.Payload) == "probe" && d.At > done {
				done = d.At
			}
		}
	}
	if done < 0 {
		return 0, fmt.Errorf("probe was not delivered")
	}
	return (done - probeAt) / int64(k), nil // rounds
}

func run() error {
	fmt.Println("convoy effect on a ring of k groups (latency in rounds):")
	fmt.Printf("%6s | %9s | %9s | %7s\n", "k", "idle", "busy", "factor")
	for _, k := range []int{3, 5, 8, 12} {
		idle, err := probeLatency(k, false)
		if err != nil {
			return err
		}
		busy, err := probeLatency(k, true)
		if err != nil {
			return err
		}
		fmt.Printf("%6d | %9d | %9d | %6.1fx\n", k, idle, busy, float64(busy)/float64(idle))
	}
	fmt.Println("\nalone, the probe's latency is flat; with the ring busy, stabilisation")
	fmt.Println("recurses around the cyclic family and the penalty grows with the ring.")
	return nil
}
